// Report analysis behind the `mpiv_stat` CLI: a minimal JSON DOM for the
// scenario reports `scenario::to_json` emits, flattening of each run's
// numeric fields into "dotted.path -> value" rows, heavy-hitter ranking of
// per-rank / per-EL-shard instruments, and a tolerance diff of two reports
// — the A/B regression primitive (two identical-seed runs must diff to
// zero drift; CI asserts exactly that).
//
// Lives in the library (not the tool) so tests/test_metrics.cpp can unit
// test the parser, flattener and differ without spawning a process.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mpiv::metrics {

/// Minimal JSON value. Object members keep file order (reports are emitted
/// deterministically, and diffs want stable iteration anyway).
struct Json {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kObject,
    kArray,
  };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<std::pair<std::string, Json>> members;  // kObject
  std::vector<Json> items;                            // kArray

  /// Object member lookup; nullptr when absent or not an object.
  const Json* find(const std::string& key) const;
};

/// Parses a complete JSON document. Throws std::runtime_error with a
/// byte-offset diagnostic on malformed input.
Json parse_json(const std::string& text);

/// One run of a report, flattened: every numeric leaf reachable through
/// nested objects becomes "path.to.leaf -> value" (bools as 0/1; strings
/// and arrays are skipped). Sorted by name.
struct RunMetrics {
  std::string label;
  bool skipped = false;
  std::vector<std::pair<std::string, double>> values;

  /// Value lookup; nullptr when the run has no such metric.
  const double* find(const std::string& name) const;
};

/// Collects every run of a report — handles both a single-set report
/// ({"runs": [...]}) and a multi-set one ({"reports": [{"runs": ...}]}).
/// Throws std::runtime_error when the document has no runs array.
std::vector<RunMetrics> extract_runs(const Json& report);

/// One per-rank / per-EL-shard entity ("rank3", "el0") ranked by its
/// hottest instrument (ack_us.p99 for ranks when present, stored_ops for
/// shards), with every instrument of that entity as detail rows.
struct TopRow {
  std::string entity;
  std::string weight_metric;
  double weight = 0;
  std::vector<std::pair<std::string, double>> details;
};

/// Heaviest `n` entities of one run, weight-descending (ties by name).
std::vector<TopRow> top_rows(const RunMetrics& run, std::size_t n);

/// One metric whose relative drift between two reports exceeds tolerance,
/// or that exists on only one side (the other value reported as 0 with
/// missing_in set).
struct DiffEntry {
  std::string run;
  std::string metric;
  double a = 0;
  double b = 0;
  double drift = 0;     // |a-b| / max(|a|,|b|), 0 when both are 0
  int missing_in = 0;   // 0 = present in both, 1 = absent in A, 2 = absent in B
};

struct DiffResult {
  std::vector<DiffEntry> drifting;
  std::vector<std::string> unmatched_runs;  // labels on one side only
  std::size_t runs_compared = 0;
  std::size_t metrics_compared = 0;

  bool clean() const { return drifting.empty() && unmatched_runs.empty(); }
};

/// Diffs two parsed reports run-by-run (matched by label) and
/// metric-by-metric. `tolerance` is the allowed relative drift per metric
/// (0 = exact).
DiffResult diff_reports(const Json& a, const Json& b, double tolerance);

}  // namespace mpiv::metrics
