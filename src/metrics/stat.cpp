#include "metrics/stat.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <set>
#include <stdexcept>

namespace mpiv::metrics {

namespace {

/// Recursive-descent JSON parser over the in-memory document. The grammar
/// is full JSON (the reports only use a subset, but scn users may feed any
/// file to mpiv_stat).
class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        Json v;
        v.kind = Json::Kind::kString;
        v.str = string();
        return v;
      }
      case 't':
      case 'f': {
        Json v;
        v.kind = Json::Kind::kBool;
        if (consume("true")) {
          v.boolean = true;
        } else if (consume("false")) {
          v.boolean = false;
        } else {
          fail("bad literal");
        }
        return v;
      }
      case 'n': {
        if (!consume("null")) fail("bad literal");
        return Json{};
      }
      default: return number();
    }
  }

  Json object() {
    Json v;
    v.kind = Json::Kind::kObject;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      if (peek() != '"') fail("expected member name");
      std::string name = string();
      expect(':');
      v.members.emplace_back(std::move(name), value());
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return v;
  }

  Json array() {
    Json v;
    v.kind = Json::Kind::kArray;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("bad \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (report text is ASCII; this
          // keeps arbitrary inputs lossless enough for diffing).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
    return out;
  }

  Json number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    Json v;
    v.kind = Json::Kind::kNumber;
    const std::string tok = s_.substr(start, pos_ - start);
    char* end = nullptr;
    v.number = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number '" + tok + "'");
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// Collects every numeric leaf of `v` under dotted `path` (bools as 0/1;
/// strings and arrays skipped — arrays hold per-record detail the diff
/// would double-count against the folded histograms).
void flatten(const Json& v, const std::string& path,
             std::vector<std::pair<std::string, double>>& out) {
  switch (v.kind) {
    case Json::Kind::kNumber: out.emplace_back(path, v.number); break;
    case Json::Kind::kBool:
      out.emplace_back(path, v.boolean ? 1.0 : 0.0);
      break;
    case Json::Kind::kObject:
      for (const auto& [name, child] : v.members) {
        flatten(child, path.empty() ? name : path + "." + name, out);
      }
      break;
    default: break;
  }
}

void collect_runs(const Json& doc, std::vector<RunMetrics>& out) {
  const Json* runs = doc.find("runs");
  if (runs != nullptr && runs->kind == Json::Kind::kArray) {
    for (const Json& run : runs->items) {
      RunMetrics rm;
      if (const Json* label = run.find("label");
          label != nullptr && label->kind == Json::Kind::kString) {
        rm.label = label->str;
      }
      if (const Json* skipped = run.find("skipped")) {
        rm.skipped = skipped->kind == Json::Kind::kBool && skipped->boolean;
      }
      flatten(run, "", rm.values);
      std::sort(rm.values.begin(), rm.values.end());
      out.push_back(std::move(rm));
    }
  }
  if (const Json* reports = doc.find("reports");
      reports != nullptr && reports->kind == Json::Kind::kArray) {
    for (const Json& sub : reports->items) collect_runs(sub, out);
  }
}

/// Splits "metrics.<family>.<entity>.<rest>" when <entity> is a per-rank
/// or per-shard instrument name ("rank12", "el0"); returns false otherwise.
bool split_entity(const std::string& name, std::string& entity,
                  std::string& detail) {
  if (name.rfind("metrics.", 0) != 0) return false;
  const std::size_t fam_end = name.find('.', sizeof("metrics.") - 1);
  if (fam_end == std::string::npos) return false;
  const std::size_t ent_end = name.find('.', fam_end + 1);
  if (ent_end == std::string::npos) return false;
  const std::string ent = name.substr(fam_end + 1, ent_end - fam_end - 1);
  std::size_t digits = 0;
  std::string stem;
  if (ent.rfind("rank", 0) == 0) {
    stem = "rank";
  } else if (ent.rfind("el", 0) == 0) {
    stem = "el";
  } else {
    return false;
  }
  for (std::size_t i = stem.size(); i < ent.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(ent[i])) == 0) return false;
    ++digits;
  }
  if (digits == 0) return false;
  entity = ent;
  detail = name.substr(ent_end + 1);
  return true;
}

}  // namespace

const Json* Json::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, child] : members) {
    if (name == key) return &child;
  }
  return nullptr;
}

Json parse_json(const std::string& text) { return Parser(text).parse(); }

const double* RunMetrics::find(const std::string& name) const {
  const auto it = std::lower_bound(
      values.begin(), values.end(), name,
      [](const auto& kv, const std::string& n) { return kv.first < n; });
  return it != values.end() && it->first == name ? &it->second : nullptr;
}

std::vector<RunMetrics> extract_runs(const Json& report) {
  std::vector<RunMetrics> out;
  collect_runs(report, out);
  if (out.empty()) {
    throw std::runtime_error(
        "document has no \"runs\" array (is this a mpiv_run JSON report?)");
  }
  return out;
}

std::vector<TopRow> top_rows(const RunMetrics& run, std::size_t n) {
  std::map<std::string, TopRow> by_entity;
  for (const auto& [name, value] : run.values) {
    std::string entity;
    std::string detail;
    if (!split_entity(name, entity, detail)) continue;
    TopRow& row = by_entity[entity];
    row.entity = entity;
    row.details.emplace_back(detail, value);
  }
  // Weight: the tail-latency instrument when the entity has one (ranks),
  // store activity for EL shards, else the entity's largest detail.
  for (auto& [entity, row] : by_entity) {
    row.weight_metric.clear();
    for (const char* pref : {"ack_us.p99", "stored_ops"}) {
      for (const auto& [detail, value] : row.details) {
        if (detail == pref) {
          row.weight_metric = detail;
          row.weight = value;
          break;
        }
      }
      if (!row.weight_metric.empty()) break;
    }
    if (row.weight_metric.empty()) {
      for (const auto& [detail, value] : row.details) {
        if (row.weight_metric.empty() || value > row.weight) {
          row.weight_metric = detail;
          row.weight = value;
        }
      }
    }
  }
  std::vector<TopRow> rows;
  rows.reserve(by_entity.size());
  for (auto& [entity, row] : by_entity) rows.push_back(std::move(row));
  std::sort(rows.begin(), rows.end(), [](const TopRow& a, const TopRow& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.entity < b.entity;
  });
  if (rows.size() > n) rows.resize(n);
  return rows;
}

DiffResult diff_reports(const Json& a, const Json& b, double tolerance) {
  DiffResult res;
  std::vector<RunMetrics> ra = extract_runs(a);
  std::vector<RunMetrics> rb = extract_runs(b);
  std::map<std::string, const RunMetrics*> bmap;
  for (const RunMetrics& r : rb) bmap.emplace(r.label, &r);
  std::set<std::string> matched;
  for (const RunMetrics& run_a : ra) {
    const auto it = bmap.find(run_a.label);
    if (it == bmap.end()) {
      res.unmatched_runs.push_back(run_a.label + " (only in A)");
      continue;
    }
    matched.insert(run_a.label);
    const RunMetrics& run_b = *it->second;
    ++res.runs_compared;
    // Walk the union of both sorted metric lists.
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < run_a.values.size() || j < run_b.values.size()) {
      int side = 0;  // 0 both, 1 only-A, 2 only-B
      if (i >= run_a.values.size()) {
        side = 2;
      } else if (j >= run_b.values.size()) {
        side = 1;
      } else if (run_a.values[i].first < run_b.values[j].first) {
        side = 1;
      } else if (run_b.values[j].first < run_a.values[i].first) {
        side = 2;
      }
      DiffEntry e;
      e.run = run_a.label;
      if (side == 0) {
        ++res.metrics_compared;
        e.metric = run_a.values[i].first;
        e.a = run_a.values[i].second;
        e.b = run_b.values[j].second;
        ++i;
        ++j;
        const double denom = std::max(std::fabs(e.a), std::fabs(e.b));
        e.drift = denom == 0.0 ? 0.0 : std::fabs(e.a - e.b) / denom;
        if (e.drift > tolerance) res.drifting.push_back(std::move(e));
      } else if (side == 1) {
        e.metric = run_a.values[i].first;
        e.a = run_a.values[i].second;
        e.missing_in = 2;
        ++i;
        res.drifting.push_back(std::move(e));
      } else {
        e.metric = run_b.values[j].first;
        e.b = run_b.values[j].second;
        e.missing_in = 1;
        ++j;
        res.drifting.push_back(std::move(e));
      }
    }
  }
  for (const RunMetrics& run_b : rb) {
    if (matched.count(run_b.label) == 0) {
      res.unmatched_runs.push_back(run_b.label + " (only in B)");
    }
  }
  std::sort(res.drifting.begin(), res.drifting.end(),
            [](const DiffEntry& x, const DiffEntry& y) {
              if (x.drift != y.drift) return x.drift > y.drift;
              if (x.run != y.run) return x.run < y.run;
              return x.metric < y.metric;
            });
  return res;
}

}  // namespace mpiv::metrics
