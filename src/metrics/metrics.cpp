#include "metrics/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace mpiv::metrics {

double Histogram::percentile(double p) const {
  const std::uint64_t n = acc_.count();
  if (n == 0) return 0.0;
  if (p <= 0.0) return acc_.min();
  if (p >= 100.0) return acc_.max();
  // Rank of the requested percentile, 1-based: the smallest value v such
  // that at least `target` observations are <= v.
  const double target = p / 100.0 * static_cast<double>(n);
  double cum = 0.0;
  for (int i = 0; i < kBuckets; ++i) {
    const auto c = buckets_[static_cast<std::size_t>(i)];
    if (c == 0) continue;
    const double next = cum + static_cast<double>(c);
    if (next >= target) {
      const double lo = bucket_lo(i);
      const double hi = bucket_hi(i);
      const double frac = (target - cum) / static_cast<double>(c);
      const double v = lo + (hi - lo) * frac;
      return std::clamp(v, acc_.min(), acc_.max());
    }
    cum = next;
  }
  return acc_.max();
}

void Sampler::tick(sim::Time t) {
  const std::size_t stride = names_.size() + 1;
  data_.resize(capacity_ * stride);
  std::int64_t* row =
      &data_[static_cast<std::size_t>(total_ % capacity_) * stride];
  row[0] = static_cast<std::int64_t>(t);
  for (std::size_t i = 0; i < probes_.size(); ++i) row[1 + i] = probes_[i]();
  ++total_;
}

void Registry::merge(const Registry& o) {
  for (const auto& [name, c] : o.counters_) counters_[name].merge(c);
  for (const auto& [name, g] : o.gauges_) gauges_[name].merge(g);
  for (const auto& [name, h] : o.histograms_) histograms_[name].merge(h);
}

Snapshot Registry::snapshot(const Sampler* sampler) const {
  Snapshot s;
  s.enabled = true;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c.value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g.value());
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSummary hs;
    hs.name = name;
    hs.count = h.count();
    if (hs.count > 0) {
      hs.mean = h.mean();
      hs.min = h.min();
      hs.max = h.max();
      hs.p50 = h.p50();
      hs.p90 = h.p90();
      hs.p99 = h.p99();
    }
    s.histograms.push_back(std::move(hs));
  }
  if (sampler != nullptr) {
    s.sample_interval = sampler->interval();
    s.series_columns = sampler->columns();
    s.series_dropped = sampler->dropped();
    s.series_times.reserve(sampler->retained_rows());
    s.series_values.reserve(sampler->retained_rows() *
                            s.series_columns.size());
    sampler->for_each_row(
        [&s](sim::Time t, const std::int64_t* vals, std::size_t n) {
          s.series_times.push_back(t);
          s.series_values.insert(s.series_values.end(), vals, vals + n);
        });
  }
  return s;
}

std::string Snapshot::series_csv() const {
  std::string out = "t_ns";
  for (const auto& c : series_columns) {
    out += ',';
    out += c;
  }
  out += '\n';
  const std::size_t ncols = series_columns.size();
  char buf[32];
  for (std::size_t r = 0; r < series_times.size(); ++r) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(series_times[r]));
    out += buf;
    for (std::size_t c = 0; c < ncols; ++c) {
      std::snprintf(buf, sizeof(buf), ",%lld",
                    static_cast<long long>(series_values[r * ncols + c]));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace mpiv::metrics
