// Aggregate metrics — the observability layer complementary to the trace
// lanes (src/trace): where a lane records *events* for forensic alignment,
// the metrics registry keeps *aggregates* (counters, gauges, log2-bucketed
// histograms with tail percentiles) and a virtual-time series of gauge
// snapshots, the quantities the paper's evaluation charts directly
// (piggyback bytes, EL ack latency, recovery phases) plus the transients a
// mean hides (EL saturation, post-fault piggyback regrowth, daemon backlog
// drain).
//
// Everything here is schedule-neutral by construction: instruments are
// plain accumulation (no engine interaction), and the Sampler is driven by
// the engine's observation side-channel (sim::Engine::set_sampler), which
// fires between events without scheduling anything — a metrics-on run is
// event-for-event identical to a metrics-off run
// (tests/test_determinism.cpp pins the goldens both ways).
//
// This header is deliberately dependency-light (util/stats.hpp and
// sim/time.hpp only) so ftapi/stats.hpp can embed a Histogram without an
// include cycle.
#pragma once

#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "util/stats.hpp"

namespace mpiv::metrics {

/// Metrics knobs lowered from the scenario layer ([metrics] section).
/// Config{} (disabled) arms nothing: zero overhead, identical schedule.
struct Config {
  bool enabled = false;
  /// Virtual time between gauge snapshots into the time-series ring.
  sim::Time sample_interval = sim::kMillisecond;
};

/// Monotone event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_ += n; }
  std::uint64_t value() const { return v_; }
  void merge(const Counter& o) { v_ += o.v_; }

 private:
  std::uint64_t v_ = 0;
};

/// Last-written level (queue depths, backlog sizes, ring-drop counts).
class Gauge {
 public:
  void set(std::int64_t v) { v_ = v; }
  std::int64_t value() const { return v_; }
  /// Cross-rank merge keeps the larger level (a watermark semantic; sums
  /// are modeled as distinct gauges written by the owner).
  void merge(const Gauge& o) { v_ = std::max(v_, o.v_); }

 private:
  std::int64_t v_ = 0;
};

/// Log2-bucketed latency/duration histogram with tail summaries.
///
/// Embeds util::Accumulator so count/sum/mean/min/max are bit-identical to
/// the plain Accumulator this type replaced (ftapi::RankStats ack latency:
/// the `mean_ack_us` JSON field must stay byte-stable for the fault-free
/// goldens). On top of it, 64 log2 buckets: bucket 0 holds [0, 1) (and any
/// negative input), bucket i >= 1 holds [2^(i-1), 2^i), the last bucket
/// absorbs everything beyond 2^62. Percentiles interpolate linearly inside
/// the crossing bucket and clamp to the observed [min, max].
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void add(double x) {
    acc_.add(x);
    ++buckets_[static_cast<std::size_t>(bucket_of(x))];
  }

  std::uint64_t count() const { return acc_.count(); }
  double sum() const { return acc_.sum(); }
  double mean() const { return acc_.mean(); }
  double min() const { return acc_.min(); }
  double max() const { return acc_.max(); }
  std::uint64_t bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)];
  }

  /// Which bucket `x` lands in: 0 for x < 1, else 1 + floor(log2(x))
  /// capped at kBuckets - 1.
  static int bucket_of(double x) {
    if (!(x >= 1.0)) return 0;  // negatives and NaN clamp low
    const auto u = static_cast<std::uint64_t>(x);
    const int w = std::bit_width(u);
    return w < kBuckets ? w : kBuckets - 1;
  }
  static double bucket_lo(int i) {
    return i <= 0 ? 0.0 : static_cast<double>(1ULL << (i - 1));
  }
  static double bucket_hi(int i) {
    return i <= 0 ? 1.0 : 2.0 * static_cast<double>(1ULL << (i - 1));
  }

  /// Value at percentile `p` in [0, 100]: linear interpolation inside the
  /// crossing bucket, clamped to the observed range. 0 when empty.
  double percentile(double p) const;
  double p50() const { return percentile(50.0); }
  double p90() const { return percentile(90.0); }
  double p99() const { return percentile(99.0); }

  void merge(const Histogram& o) {
    acc_.merge(o.acc_);
    for (int i = 0; i < kBuckets; ++i) {
      buckets_[static_cast<std::size_t>(i)] +=
          o.buckets_[static_cast<std::size_t>(i)];
    }
  }

  void reset() { *this = Histogram{}; }

 private:
  util::Accumulator acc_;
  std::uint64_t buckets_[kBuckets] = {};
};

/// Virtual-time series of gauge snapshots. Probes are registered once (by
/// the cluster, at construction); tick(t) polls every probe and appends one
/// row to a fixed-capacity ring — when it wraps, the oldest rows are
/// overwritten and dropped() reports how many. Probes are polled only at
/// tick time, so instrumented subsystems pay nothing between samples.
class Sampler {
 public:
  explicit Sampler(sim::Time interval, std::size_t capacity = 4096)
      : interval_(interval), capacity_(capacity ? capacity : 1) {}

  void add_probe(std::string name, std::function<std::int64_t()> fn) {
    names_.push_back(std::move(name));
    probes_.push_back(std::move(fn));
  }

  /// Appends one row sampled at virtual time `t`.
  void tick(sim::Time t);

  sim::Time interval() const { return interval_; }
  const std::vector<std::string>& columns() const { return names_; }
  std::uint64_t total_rows() const { return total_; }
  std::size_t retained_rows() const {
    return total_ < capacity_ ? static_cast<std::size_t>(total_) : capacity_;
  }
  std::uint64_t dropped() const { return total_ - retained_rows(); }

  /// Visits retained rows oldest to newest: fn(t, values[ncols]).
  template <class Fn>
  void for_each_row(Fn&& fn) const {
    const std::size_t stride = names_.size() + 1;
    const std::uint64_t start = total_ - retained_rows();
    for (std::uint64_t i = start; i < total_; ++i) {
      const std::int64_t* row =
          &data_[static_cast<std::size_t>(i % capacity_) * stride];
      fn(static_cast<sim::Time>(row[0]), row + 1, names_.size());
    }
  }

 private:
  sim::Time interval_;
  std::size_t capacity_;
  std::vector<std::string> names_;
  std::vector<std::function<std::int64_t()>> probes_;
  std::vector<std::int64_t> data_;  // ring, stride = 1 + ncols ([0] = time)
  std::uint64_t total_ = 0;
};

/// One histogram's report summary (what the scenario JSON carries).
struct HistogramSummary {
  std::string name;
  std::uint64_t count = 0;
  double mean = 0, min = 0, max = 0, p50 = 0, p90 = 0, p99 = 0;
};

/// Everything a finished run's metrics boil down to — plain data, copyable
/// into runtime::ClusterReport. `enabled` gates every consumer (JSON
/// object, CSV persistence): a default Snapshot means metrics were off and
/// the report keeps its pre-metrics shape.
struct Snapshot {
  bool enabled = false;
  sim::Time sample_interval = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramSummary> histograms;
  // Time series (row-major: series_values has columns.size() entries per
  // row, one row per entry of series_times).
  std::vector<std::string> series_columns;
  std::vector<sim::Time> series_times;
  std::vector<std::int64_t> series_values;
  std::uint64_t series_dropped = 0;

  std::size_t series_rows() const { return series_times.size(); }
  /// Renders the time series as CSV ("t_ns,<col>,..." header).
  std::string series_csv() const;
};

/// Per-cluster registry of named instruments. Storage is std::map so every
/// snapshot/merge iterates in name order — deterministic output regardless
/// of registration order.
class Registry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Folds another registry in (cross-rank aggregation in tests/tools).
  void merge(const Registry& o);

  /// Freezes the registry (plus the sampler's series, when given) into the
  /// report form.
  Snapshot snapshot(const Sampler* sampler) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace mpiv::metrics
